//! Growable, pre-allocated KV cache.
//!
//! The decode hot loop appends one position per step; a `Vec::push`-style
//! cache would reallocate and memcpy the whole history O(log n) times per
//! sequence. Here every layer's K and V buffers are allocated **once** at
//! `max_seq × dim` and appending is a bounds-checked `copy_from_slice` —
//! the buffer address never changes for the lifetime of the cache (asserted
//! by `buffers_never_reallocate` below). Speculative decoding additionally
//! needs cheap rollback of rejected draft positions: [`KvCache::truncate`]
//! is O(1) because it only moves the length cursor.

/// Per-layer key/value store for one sequence.
#[derive(Debug, Clone)]
pub struct LayerKv {
    k: Vec<f32>,
    v: Vec<f32>,
    dim: usize,
    max_seq: usize,
    len: usize,
}

impl LayerKv {
    pub fn new(max_seq: usize, dim: usize) -> Self {
        Self {
            k: vec![0.0; max_seq * dim],
            v: vec![0.0; max_seq * dim],
            dim,
            max_seq,
            len: 0,
        }
    }

    /// Number of cached positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions this cache can hold. The fused decode
    /// path sizes its score scratch to this (not the current length) so the
    /// workspace request size is identical every step — a precondition for
    /// the zero-allocation steady state.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.max_seq
    }

    /// Append one position's key and value rows (each `dim` floats).
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.dim);
        assert_eq!(v_row.len(), self.dim);
        assert!(
            self.len < self.max_seq,
            "KV cache overflow: max_seq = {}",
            self.max_seq
        );
        let at = self.len * self.dim;
        self.k[at..at + self.dim].copy_from_slice(k_row);
        self.v[at..at + self.dim].copy_from_slice(v_row);
        self.len += 1;
    }

    /// All cached keys, `[len, dim]` row-major.
    #[inline]
    pub fn keys(&self) -> &[f32] {
        &self.k[..self.len * self.dim]
    }

    /// All cached values, `[len, dim]` row-major.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.v[..self.len * self.dim]
    }

    /// Key row for position `pos`.
    #[inline]
    pub fn key(&self, pos: usize) -> &[f32] {
        debug_assert!(pos < self.len);
        &self.k[pos * self.dim..(pos + 1) * self.dim]
    }

    /// Value row for position `pos`.
    #[inline]
    pub fn value(&self, pos: usize) -> &[f32] {
        debug_assert!(pos < self.len);
        &self.v[pos * self.dim..(pos + 1) * self.dim]
    }

    /// Roll back to `new_len` positions. O(1): rejected speculative entries
    /// are simply overwritten by the next append.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len, "truncate cannot grow the cache");
        self.len = new_len;
    }

    /// Stable address of the key buffer (used by tests to prove the
    /// no-reallocation property).
    pub fn key_buffer_ptr(&self) -> *const f32 {
        self.k.as_ptr()
    }
}

/// One [`LayerKv`] per decoder layer, kept in lockstep.
#[derive(Debug, Clone)]
pub struct KvCache {
    pub layers: Vec<LayerKv>,
}

impl KvCache {
    pub fn new(n_layers: usize, max_seq: usize, dim: usize) -> Self {
        Self {
            layers: (0..n_layers).map(|_| LayerKv::new(max_seq, dim)).collect(),
        }
    }

    /// Cached sequence length (identical across layers by construction).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.len())
    }

    /// Maximum sequence length (identical across layers by construction).
    pub fn capacity(&self) -> usize {
        self.layers.first().map_or(0, |l| l.capacity())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Roll every layer back to `new_len` positions.
    pub fn truncate(&mut self, new_len: usize) {
        for layer in &mut self.layers {
            layer.truncate(new_len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_never_reallocate() {
        let max_seq = 64;
        let dim = 8;
        let mut layer = LayerKv::new(max_seq, dim);
        let ptr = layer.key_buffer_ptr();
        let row = vec![1.0f32; dim];
        for _ in 0..max_seq {
            layer.append(&row, &row);
        }
        assert_eq!(ptr, layer.key_buffer_ptr(), "append reallocated the cache");
        layer.truncate(3);
        assert_eq!(ptr, layer.key_buffer_ptr());
    }

    #[test]
    fn append_then_read_back() {
        let mut layer = LayerKv::new(4, 3);
        layer.append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        layer.append(&[7.0, 8.0, 9.0], &[1.5, 2.5, 3.5]);
        assert_eq!(layer.len(), 2);
        assert_eq!(layer.key(1), &[7.0, 8.0, 9.0]);
        assert_eq!(layer.value(0), &[4.0, 5.0, 6.0]);
        assert_eq!(layer.keys().len(), 6);
    }

    #[test]
    fn truncate_rolls_back_then_overwrites() {
        let mut layer = LayerKv::new(4, 2);
        layer.append(&[1.0, 1.0], &[1.0, 1.0]);
        layer.append(&[2.0, 2.0], &[2.0, 2.0]);
        layer.truncate(1);
        assert_eq!(layer.len(), 1);
        layer.append(&[9.0, 9.0], &[9.0, 9.0]);
        assert_eq!(layer.key(1), &[9.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut layer = LayerKv::new(1, 2);
        layer.append(&[0.0, 0.0], &[0.0, 0.0]);
        layer.append(&[0.0, 0.0], &[0.0, 0.0]);
    }

    #[test]
    fn multi_layer_lockstep() {
        let mut cache = KvCache::new(3, 8, 4);
        assert!(cache.is_empty());
        let row = vec![0.5f32; 4];
        for layer in &mut cache.layers {
            layer.append(&row, &row);
        }
        assert_eq!(cache.len(), 1);
        cache.truncate(0);
        assert!(cache.is_empty());
    }
}
