//! Growable, pre-allocated KV cache.
//!
//! The decode hot loop appends one position per step; a `Vec::push`-style
//! cache would reallocate and memcpy the whole history O(log n) times per
//! sequence. Here every layer's K and V buffers are allocated **once** at
//! `max_seq × dim` and appending is a bounds-checked `copy_from_slice` —
//! the buffer address never changes for the lifetime of the cache (asserted
//! by `buffers_never_reallocate` below). Speculative decoding additionally
//! needs cheap rollback of rejected draft positions: [`KvCache::truncate`]
//! is O(1) because it only moves the length cursor.

/// Per-layer key/value store for one sequence.
#[derive(Debug, Clone)]
pub struct LayerKv {
    k: Vec<f32>,
    v: Vec<f32>,
    dim: usize,
    max_seq: usize,
    len: usize,
}

impl LayerKv {
    pub fn new(max_seq: usize, dim: usize) -> Self {
        Self {
            k: vec![0.0; max_seq * dim],
            v: vec![0.0; max_seq * dim],
            dim,
            max_seq,
            len: 0,
        }
    }

    /// Number of cached positions.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Maximum number of positions this cache can hold. The fused decode
    /// path sizes its score scratch to this (not the current length) so the
    /// workspace request size is identical every step — a precondition for
    /// the zero-allocation steady state.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.max_seq
    }

    /// Append one position's key and value rows (each `dim` floats).
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) {
        assert_eq!(k_row.len(), self.dim);
        assert_eq!(v_row.len(), self.dim);
        assert!(
            self.len < self.max_seq,
            "KV cache overflow: max_seq = {}",
            self.max_seq
        );
        let at = self.len * self.dim;
        self.k[at..at + self.dim].copy_from_slice(k_row);
        self.v[at..at + self.dim].copy_from_slice(v_row);
        self.len += 1;
    }

    /// All cached keys, `[len, dim]` row-major.
    #[inline]
    pub fn keys(&self) -> &[f32] {
        &self.k[..self.len * self.dim]
    }

    /// All cached values, `[len, dim]` row-major.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.v[..self.len * self.dim]
    }

    /// Key row for position `pos`.
    #[inline]
    pub fn key(&self, pos: usize) -> &[f32] {
        debug_assert!(pos < self.len);
        &self.k[pos * self.dim..(pos + 1) * self.dim]
    }

    /// Value row for position `pos`.
    #[inline]
    pub fn value(&self, pos: usize) -> &[f32] {
        debug_assert!(pos < self.len);
        &self.v[pos * self.dim..(pos + 1) * self.dim]
    }

    /// Roll back to `new_len` positions. O(1): rejected speculative entries
    /// are simply overwritten by the next append.
    pub fn truncate(&mut self, new_len: usize) {
        assert!(new_len <= self.len, "truncate cannot grow the cache");
        self.len = new_len;
    }

    /// Return the layer to its freshly-allocated state **without freeing the
    /// buffers**: length back to 0 and every slot rezeroed, so a reset layer
    /// is bit-identical to `LayerKv::new(max_seq, dim)` (asserted by
    /// `reset_is_bit_identical_to_fresh` below). This is what lets a serving
    /// session slot reuse one long-lived cache across requests instead of
    /// reallocating per request.
    pub fn reset(&mut self) {
        self.k.fill(0.0);
        self.v.fill(0.0);
        self.len = 0;
    }

    /// Stable address of the key buffer (used by tests to prove the
    /// no-reallocation property).
    pub fn key_buffer_ptr(&self) -> *const f32 {
        self.k.as_ptr()
    }
}

/// One [`LayerKv`] per decoder layer, kept in lockstep.
#[derive(Debug, Clone)]
pub struct KvCache {
    pub layers: Vec<LayerKv>,
    /// Minimum length reached since the last [`KvCache::checkpoint`] (or
    /// creation/reset). Rows below this mark have never been overwritten,
    /// which is exactly the condition under which a checkpoint is
    /// restorable — see [`KvCache::restore`].
    low_mark: usize,
}

/// A saved committed-prefix position of a [`KvCache`], produced by
/// [`KvCache::checkpoint`]. Because appends only ever overwrite positions at
/// or past the current length, restoring is an O(1) truncate — no KV rows
/// are copied — provided the cache never went *below* the checkpointed
/// length in between (tracked by the cache's low-watermark).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCheckpoint {
    len: usize,
}

impl KvCheckpoint {
    /// The committed length this checkpoint restores to.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

impl KvCache {
    pub fn new(n_layers: usize, max_seq: usize, dim: usize) -> Self {
        Self {
            layers: (0..n_layers).map(|_| LayerKv::new(max_seq, dim)).collect(),
            low_mark: 0,
        }
    }

    /// Cached sequence length (identical across layers by construction).
    pub fn len(&self) -> usize {
        self.layers.first().map_or(0, |l| l.len())
    }

    /// Maximum sequence length (identical across layers by construction).
    pub fn capacity(&self) -> usize {
        self.layers.first().map_or(0, |l| l.capacity())
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Roll every layer back to `new_len` positions.
    pub fn truncate(&mut self, new_len: usize) {
        for layer in &mut self.layers {
            layer.truncate(new_len);
        }
        self.low_mark = self.low_mark.min(new_len);
    }

    /// Return the cache to its freshly-allocated state without freeing any
    /// buffer: every layer rezeroed and empty (see [`LayerKv::reset`]).
    /// Serving session slots call this between requests so one long-lived
    /// allocation serves the whole process lifetime.
    pub fn reset(&mut self) {
        for layer in &mut self.layers {
            layer.reset();
        }
        self.low_mark = 0;
    }

    /// Record the current committed length for a later O(1)
    /// [`KvCache::restore`]. Taking a checkpoint rearms the low-watermark,
    /// so only the **most recent** checkpoint is guaranteed restorable.
    ///
    /// The serving use case: checkpoint right after prompt prefill, decode
    /// speculatively (which only truncates back to committed frontiers at or
    /// past the prefill), then restore to regenerate from the same prompt —
    /// or to unwind a cancelled speculative block — without re-running
    /// prefill.
    pub fn checkpoint(&mut self) -> KvCheckpoint {
        self.low_mark = self.len();
        KvCheckpoint { len: self.len() }
    }

    /// Restore to a [`KvCheckpoint`] taken on this cache. O(1): rows in
    /// `[0, cp.len)` are untouched since the checkpoint (enforced via the
    /// low-watermark — if the cache was truncated below the checkpointed
    /// length in between, those rows were overwritten and restoring would
    /// silently resurrect stale KV, so this panics instead).
    pub fn restore(&mut self, cp: &KvCheckpoint) {
        assert!(
            cp.len <= self.len(),
            "checkpoint ({}) is ahead of the cache ({}); cannot restore forward",
            cp.len,
            self.len()
        );
        assert!(
            self.low_mark >= cp.len,
            "cache was truncated below the checkpoint ({} < {}) since it was \
             taken; its rows are stale",
            self.low_mark,
            cp.len
        );
        self.truncate(cp.len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_never_reallocate() {
        let max_seq = 64;
        let dim = 8;
        let mut layer = LayerKv::new(max_seq, dim);
        let ptr = layer.key_buffer_ptr();
        let row = vec![1.0f32; dim];
        for _ in 0..max_seq {
            layer.append(&row, &row);
        }
        assert_eq!(ptr, layer.key_buffer_ptr(), "append reallocated the cache");
        layer.truncate(3);
        assert_eq!(ptr, layer.key_buffer_ptr());
    }

    #[test]
    fn append_then_read_back() {
        let mut layer = LayerKv::new(4, 3);
        layer.append(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]);
        layer.append(&[7.0, 8.0, 9.0], &[1.5, 2.5, 3.5]);
        assert_eq!(layer.len(), 2);
        assert_eq!(layer.key(1), &[7.0, 8.0, 9.0]);
        assert_eq!(layer.value(0), &[4.0, 5.0, 6.0]);
        assert_eq!(layer.keys().len(), 6);
    }

    #[test]
    fn truncate_rolls_back_then_overwrites() {
        let mut layer = LayerKv::new(4, 2);
        layer.append(&[1.0, 1.0], &[1.0, 1.0]);
        layer.append(&[2.0, 2.0], &[2.0, 2.0]);
        layer.truncate(1);
        assert_eq!(layer.len(), 1);
        layer.append(&[9.0, 9.0], &[9.0, 9.0]);
        assert_eq!(layer.key(1), &[9.0, 9.0]);
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn overflow_panics() {
        let mut layer = LayerKv::new(1, 2);
        layer.append(&[0.0, 0.0], &[0.0, 0.0]);
        layer.append(&[0.0, 0.0], &[0.0, 0.0]);
    }

    /// `reset` must leave the layer **bit-identical** to a freshly
    /// allocated one — not just empty, but with every slot rezeroed — while
    /// keeping the original buffer (no reallocation). This is the contract
    /// session-slot reuse relies on: a request served from a reset cache
    /// computes exactly what it would from a new cache.
    #[test]
    fn reset_is_bit_identical_to_fresh() {
        let (max_seq, dim) = (8, 3);
        let mut layer = LayerKv::new(max_seq, dim);
        let ptr = layer.key_buffer_ptr();
        for i in 0..max_seq {
            let row = vec![i as f32 + 0.5; dim];
            layer.append(&row, &row);
        }
        layer.truncate(2);
        layer.reset();

        let fresh = LayerKv::new(max_seq, dim);
        assert_eq!(layer.len(), fresh.len());
        assert_eq!(layer.dim, fresh.dim);
        assert_eq!(layer.max_seq, fresh.max_seq);
        // Full-buffer comparison, beyond the visible `len` window: bitwise.
        assert_eq!(
            layer.k.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            fresh.k.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(
            layer.v.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            fresh.v.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
        assert_eq!(ptr, layer.key_buffer_ptr(), "reset reallocated the cache");
    }

    #[test]
    fn cache_reset_covers_all_layers() {
        let mut cache = KvCache::new(2, 4, 2);
        let row = [1.0f32, 2.0];
        for layer in &mut cache.layers {
            layer.append(&row, &row);
        }
        cache.reset();
        assert_eq!(cache.len(), 0);
        for layer in &cache.layers {
            assert!(layer.k.iter().all(|&x| x == 0.0));
            assert!(layer.v.iter().all(|&x| x == 0.0));
        }
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut cache = KvCache::new(1, 8, 2);
        let append = |c: &mut KvCache, x: f32| {
            for layer in &mut c.layers {
                layer.append(&[x, x], &[x, x]);
            }
        };
        append(&mut cache, 1.0);
        append(&mut cache, 2.0);
        let cp = cache.checkpoint();
        assert_eq!(cp.len(), 2);
        // Speculative traffic past the checkpoint: append, roll back (never
        // below the checkpoint), append again.
        append(&mut cache, 3.0);
        append(&mut cache, 4.0);
        cache.truncate(3);
        append(&mut cache, 5.0);
        cache.restore(&cp);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.layers[0].key(0), &[1.0, 1.0]);
        assert_eq!(cache.layers[0].key(1), &[2.0, 2.0]);
    }

    /// Restoring after the cache dipped below the checkpointed length must
    /// panic: the checkpointed rows were overwritten and are stale.
    #[test]
    #[should_panic(expected = "truncated below the checkpoint")]
    fn restore_after_deeper_truncate_panics() {
        let mut cache = KvCache::new(1, 8, 2);
        for layer in &mut cache.layers {
            layer.append(&[1.0, 1.0], &[1.0, 1.0]);
            layer.append(&[2.0, 2.0], &[2.0, 2.0]);
        }
        let cp = cache.checkpoint();
        cache.truncate(1); // below the checkpoint: rows [1, 2) now invalid
        for layer in &mut cache.layers {
            layer.append(&[9.0, 9.0], &[9.0, 9.0]);
            layer.append(&[8.0, 8.0], &[8.0, 8.0]);
        }
        cache.restore(&cp);
    }

    #[test]
    fn multi_layer_lockstep() {
        let mut cache = KvCache::new(3, 8, 4);
        assert!(cache.is_empty());
        let row = vec![0.5f32; 4];
        for layer in &mut cache.layers {
            layer.append(&row, &row);
        }
        assert_eq!(cache.len(), 1);
        cache.truncate(0);
        assert!(cache.is_empty());
    }
}
