//! Block-paged KV cache (PagedAttention-style).
//!
//! PR 5's serving engine gave every slot two full-`max_seq` [`KvCache`]s —
//! right for a fixed slot pool, wrong at scale: a request that decodes 30
//! tokens holds the memory of 1024. This module replaces the contiguous
//! per-layer slab with a **paged** design:
//!
//! * [`KvPool`] — one pre-allocated arena of fixed-size *blocks*. A block
//!   holds `block_size` consecutive positions for **every** layer (layout
//!   `[layer][K|V][pos][dim]`), so one block table serves the whole cache
//!   and admission control can reason in free blocks instead of slots.
//! * [`KvCache`] — a view over a block table leased from a pool:
//!   `append`/`truncate`/`reset`/`checkpoint`/`restore` keep their exact
//!   pre-paging contracts. Dropping a cache returns its blocks to the pool.
//! * Copy-on-write sharing: [`KvPool::try_lease_with_prefix`] maps another
//!   cache's fully-filled prefix blocks into a new lease by `Arc`-cloning
//!   them — zero copy. A writer that would mutate a shared block first
//!   copies it out of the pool (the vision prefix cache rides on this).
//!
//! Numerics are unchanged: the attention kernels sweep the cache in
//! per-block chunks, and both `attn_scores_with` (independent dot per
//! position) and `attn_mix_with` (strict in-order elementwise accumulation)
//! are bit-identical under any split of the position range, on every
//! dispatch tier. A standalone [`KvCache::new`] leases a single block sized
//! to the whole sequence from a private pool, so the non-serving paths keep
//! one contiguous slab per layer and pay nothing for paging.
//!
//! Zero steady-state allocation survives: all blocks are acquired up front
//! at lease time, appends write in place (`Arc::get_mut` — no lock), and
//! `capacity()` is fixed per lease so workspace scratch requests stay
//! constant-size.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-global lease-identity counter. Every [`KvCache`] — pool lease or
/// standalone — gets a unique id at construction, carried by its
/// checkpoints, so a [`KvCheckpoint`] can never be replayed against a
/// different lease (e.g. a fresh lease that recycled the same pool blocks).
/// Copy-on-write inside one lease (`ensure_unique`) does NOT change the id:
/// the lease is the same logical cache, so checkpoints taken before a CoW
/// copy stay valid after it.
static NEXT_LEASE_ID: AtomicU64 = AtomicU64::new(1);

fn next_lease_id() -> u64 {
    NEXT_LEASE_ID.fetch_add(1, Ordering::Relaxed)
}

/// Shared state of a block arena. Held via `Arc` by the pool handle and by
/// every cache leased from it, so blocks can flow back even after the
/// [`KvPool`] handle is gone.
#[derive(Debug)]
struct PoolInner {
    n_layers: usize,
    dim: usize,
    block_size: usize,
    total_blocks: usize,
    /// Returned block buffers, ready to re-lease. Locked only at lease /
    /// drop / copy-on-write time — never on the append or read hot path.
    free: Mutex<Vec<Vec<f32>>>,
}

impl PoolInner {
    fn block_f32s(&self) -> usize {
        self.n_layers * 2 * self.block_size * self.dim
    }

    /// Pop a free buffer, or allocate a fresh one if the arena is exhausted
    /// (reachable only from `reset`/copy-on-write, never from `append` on a
    /// uniquely-owned lease).
    fn acquire_or_alloc(&self) -> Vec<f32> {
        match self.free.lock().unwrap().pop() {
            Some(mut buf) => {
                buf.fill(0.0);
                buf
            }
            None => vec![0.0; self.block_f32s()],
        }
    }
}

/// Handle to a pre-allocated arena of KV blocks; see the module docs.
#[derive(Debug, Clone)]
pub struct KvPool {
    inner: Arc<PoolInner>,
}

impl KvPool {
    /// Pre-allocate `n_blocks` blocks of `block_size` positions each, for
    /// caches of `n_layers` layers with `dim`-wide K/V rows.
    pub fn new(n_layers: usize, dim: usize, block_size: usize, n_blocks: usize) -> Self {
        assert!(n_layers > 0 && dim > 0 && block_size > 0, "degenerate pool");
        let inner = PoolInner {
            n_layers,
            dim,
            block_size,
            total_blocks: n_blocks,
            free: Mutex::new(Vec::new()),
        };
        let bufs = (0..n_blocks)
            .map(|_| vec![0.0; inner.block_f32s()])
            .collect();
        *inner.free.lock().unwrap() = bufs;
        Self {
            inner: Arc::new(inner),
        }
    }

    pub fn n_layers(&self) -> usize {
        self.inner.n_layers
    }

    pub fn dim(&self) -> usize {
        self.inner.dim
    }

    pub fn block_size(&self) -> usize {
        self.inner.block_size
    }

    pub fn total_blocks(&self) -> usize {
        self.inner.total_blocks
    }

    /// Blocks currently available to lease.
    pub fn free_blocks(&self) -> usize {
        self.inner.free.lock().unwrap().len()
    }

    /// Blocks a lease of `positions` positions occupies.
    pub fn blocks_for(&self, positions: usize) -> usize {
        positions.div_ceil(self.inner.block_size).max(1)
    }

    /// Total arena size in f32 elements (for equal-memory comparisons).
    pub fn arena_f32s(&self) -> usize {
        self.inner.total_blocks * self.inner.block_f32s()
    }

    /// Lease a cache of exactly `capacity` positions, acquiring (and
    /// zeroing) every block up front so the lease never touches the pool
    /// again until it is dropped. `None` if the pool lacks the blocks —
    /// the admission-control signal.
    pub fn try_lease(&self, capacity: usize) -> Option<KvCache> {
        let n = self.blocks_for(capacity);
        let blocks = {
            let mut free = self.inner.free.lock().unwrap();
            if free.len() < n {
                return None;
            }
            (0..n)
                .map(|_| {
                    let mut buf = free.pop().unwrap();
                    buf.fill(0.0);
                    Arc::new(buf)
                })
                .collect()
        };
        Some(KvCache {
            pool: Arc::clone(&self.inner),
            blocks,
            lens: vec![0; self.inner.n_layers],
            capacity,
            low_mark: 0,
            lease_id: next_lease_id(),
        })
    }

    /// Lease a cache of `capacity` positions whose first `prefix.len()`
    /// positions are `prefix`'s contents: fully-filled prefix blocks are
    /// shared copy-on-write (`Arc`-cloned, zero copy); a partially-filled
    /// tail block is copied eagerly so the new lease can append without
    /// ever mutating the prefix. Only the non-shared blocks are drawn from
    /// the pool. `None` if the pool lacks the blocks.
    pub fn try_lease_with_prefix(&self, prefix: &KvCache, capacity: usize) -> Option<KvCache> {
        assert!(
            Arc::ptr_eq(&self.inner, &prefix.pool),
            "prefix must be leased from the same pool"
        );
        let plen = prefix.len();
        assert!(
            prefix.lens.iter().all(|&l| l == plen),
            "prefix layers must be in lockstep"
        );
        assert!(plen <= capacity, "prefix longer than the requested lease");
        let bs = self.inner.block_size;
        let dim = self.inner.dim;
        let n = self.blocks_for(capacity);
        let n_shared = plen / bs;
        let mut blocks: Vec<Arc<Vec<f32>>> = {
            let mut free = self.inner.free.lock().unwrap();
            if free.len() < n - n_shared {
                return None;
            }
            let mut blocks: Vec<Arc<Vec<f32>>> =
                prefix.blocks[..n_shared].iter().map(Arc::clone).collect();
            blocks.extend((n_shared..n).map(|_| {
                let mut buf = free.pop().unwrap();
                buf.fill(0.0);
                Arc::new(buf)
            }));
            blocks
        };
        // Copy the partial tail rows (per layer, K and V independently) so
        // positions `n_shared*bs..plen` land in the fresh block.
        let rem = plen % bs;
        if rem > 0 {
            let src = Arc::clone(&prefix.blocks[n_shared]);
            let dst = Arc::get_mut(&mut blocks[n_shared]).expect("fresh block is unique");
            for l in 0..self.inner.n_layers {
                let k0 = l * 2 * bs * dim;
                let v0 = k0 + bs * dim;
                dst[k0..k0 + rem * dim].copy_from_slice(&src[k0..k0 + rem * dim]);
                dst[v0..v0 + rem * dim].copy_from_slice(&src[v0..v0 + rem * dim]);
            }
        }
        Some(KvCache {
            pool: Arc::clone(&self.inner),
            blocks,
            lens: vec![plen; self.inner.n_layers],
            capacity,
            low_mark: 0,
            // A prefix lease is a NEW logical cache: checkpoints taken on
            // the prefix must not restore this lease (or vice versa), even
            // though they share physical blocks copy-on-write.
            lease_id: next_lease_id(),
        })
    }
}

/// Rollback point for speculative decoding; see [`KvCache::checkpoint`].
///
/// Carries the identity of the lease it was taken on, so restoring against
/// the wrong cache — a different lease that recycled the same pool blocks,
/// or a CoW sibling sharing a prefix — is a panic, not silent corruption.
/// Surviving *within-lease* copy-on-write is the point: `ensure_unique`
/// swaps block storage but keeps the lease id, so a draft thread's
/// checkpoints stay valid across CoW (pinned by the tests below).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvCheckpoint {
    len: usize,
    lease_id: u64,
}

impl KvCheckpoint {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Identity of the lease this checkpoint belongs to.
    pub fn lease_id(&self) -> u64 {
        self.lease_id
    }
}

/// A paged KV cache: a table of arena blocks plus per-layer lengths.
///
/// Layers append independently during one forward pass (the decoder visits
/// them in order) and are back in lockstep between passes; cache-level
/// `len`/`truncate`/`checkpoint` speak for the whole stack, exactly as the
/// pre-paging contiguous cache did.
#[derive(Debug)]
pub struct KvCache {
    pool: Arc<PoolInner>,
    blocks: Vec<Arc<Vec<f32>>>,
    lens: Vec<usize>,
    capacity: usize,
    low_mark: usize,
    lease_id: u64,
}

impl KvCache {
    /// Standalone cache: a private single-block pool sized to the whole
    /// sequence, leased in full. Keeps every non-serving call site (tests,
    /// benches, one-shot loops) allocation- and paging-free.
    pub fn new(n_layers: usize, max_seq: usize, dim: usize) -> Self {
        KvPool::new(n_layers, dim, max_seq, 1)
            .try_lease(max_seq)
            .expect("private pool has exactly one block")
    }

    pub fn n_layers(&self) -> usize {
        self.pool.n_layers
    }

    pub fn dim(&self) -> usize {
        self.pool.dim
    }

    pub fn block_size(&self) -> usize {
        self.pool.block_size
    }

    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Cached positions (first layer's view; layers agree between passes).
    pub fn len(&self) -> usize {
        self.lens.first().copied().unwrap_or(0)
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fixed logical capacity of this lease. Constant for the cache's whole
    /// lifetime, so the fused decode path's score scratch (sized to this,
    /// not the current length) requests an identical workspace buffer every
    /// step — a precondition for the zero-allocation steady state.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Read-only view of one layer.
    pub fn layer(&self, l: usize) -> KvLayer<'_> {
        assert!(l < self.pool.n_layers, "layer {l} out of range");
        KvLayer { cache: self, l }
    }

    /// Mutable view of one layer (append + reads).
    pub fn layer_mut(&mut self, l: usize) -> KvLayerMut<'_> {
        assert!(l < self.pool.n_layers, "layer {l} out of range");
        KvLayerMut { cache: self, l }
    }

    /// Roll every layer back to `new_len` positions. O(1): rows beyond stay
    /// in place until overwritten by later appends.
    pub fn truncate(&mut self, new_len: usize) {
        for len in &mut self.lens {
            assert!(new_len <= *len, "truncate cannot grow the cache");
            *len = new_len;
        }
        self.low_mark = self.low_mark.min(new_len);
    }

    /// Empty the cache and rezero its storage so a reused lease is
    /// bit-identical to a fresh one. Shared (copy-on-write) blocks are
    /// released back to their other owner and replaced with fresh zeroed
    /// blocks. Outstanding checkpoints are invalidated (`restore` after
    /// `reset` panics — the rows they name are gone).
    pub fn reset(&mut self) {
        for block in &mut self.blocks {
            match Arc::get_mut(block) {
                Some(buf) => buf.fill(0.0),
                None => *block = Arc::new(self.pool.acquire_or_alloc()),
            }
        }
        self.lens.fill(0);
        self.low_mark = 0;
    }

    /// Mark the current length as a rollback point: `restore` can return
    /// here as long as the cache is never truncated below it (the
    /// low-watermark contract — rows below the mark may be overwritten by
    /// reuse, so a deeper truncate invalidates the checkpoint).
    pub fn checkpoint(&mut self) -> KvCheckpoint {
        self.low_mark = self.len();
        KvCheckpoint {
            len: self.len(),
            lease_id: self.lease_id,
        }
    }

    /// Identity of this lease; see [`KvCheckpoint::lease_id`].
    pub fn lease_id(&self) -> u64 {
        self.lease_id
    }

    /// Roll back to a checkpoint taken on this cache.
    pub fn restore(&mut self, cp: &KvCheckpoint) {
        assert_eq!(
            cp.lease_id, self.lease_id,
            "checkpoint belongs to a different lease"
        );
        assert!(
            cp.len <= self.len(),
            "checkpoint is ahead of the cache: {} > {}",
            cp.len,
            self.len()
        );
        assert!(
            self.low_mark >= cp.len,
            "cache was truncated below the checkpoint ({} < {})",
            self.low_mark,
            cp.len
        );
        self.truncate(cp.len);
    }

    /// Make block `b` uniquely owned, copying it out of a share if needed.
    fn ensure_unique(&mut self, b: usize) {
        if Arc::get_mut(&mut self.blocks[b]).is_some() {
            return;
        }
        let mut buf = self.pool.acquire_or_alloc();
        buf.copy_from_slice(&self.blocks[b]);
        self.blocks[b] = Arc::new(buf);
    }

    /// Fork a **branch** off a checkpoint: a new lease (fresh identity)
    /// whose first `cp.len()` positions are this cache's rows at the
    /// checkpoint, shared copy-on-write exactly like
    /// [`KvPool::try_lease_with_prefix`] — fully-filled blocks are
    /// `Arc`-cloned (zero copy), a partially-filled tail block is copied
    /// eagerly. Either side writing past the fork point copies blocks out
    /// of the share first (`ensure_unique`), so no branch can ever clobber
    /// a sibling's rows. `None` if the pool lacks the non-shared blocks —
    /// forking never steals capacity from live leases.
    ///
    /// The checkpoint must still be valid on this cache (same lease, not
    /// truncated below), which is what guarantees the shared rows are the
    /// rows the checkpoint named.
    pub fn try_fork_from_checkpoint(&self, cp: &KvCheckpoint, capacity: usize) -> Option<KvCache> {
        assert_eq!(
            cp.lease_id, self.lease_id,
            "checkpoint belongs to a different lease"
        );
        assert!(
            cp.len <= self.len(),
            "checkpoint is ahead of the cache: {} > {}",
            cp.len,
            self.len()
        );
        assert!(
            self.low_mark >= cp.len,
            "cache was truncated below the checkpoint ({} < {})",
            self.low_mark,
            cp.len
        );
        assert!(
            self.lens.iter().all(|&l| l >= cp.len),
            "fork point must be behind every layer"
        );
        assert!(cp.len <= capacity, "fork prefix longer than the lease");
        let bs = self.pool.block_size;
        let dim = self.pool.dim;
        let n = capacity.div_ceil(bs).max(1);
        let n_shared = cp.len / bs;
        let mut blocks: Vec<Arc<Vec<f32>>> = {
            let mut free = self.pool.free.lock().unwrap();
            if free.len() < n - n_shared {
                return None;
            }
            let mut blocks: Vec<Arc<Vec<f32>>> =
                self.blocks[..n_shared].iter().map(Arc::clone).collect();
            blocks.extend((n_shared..n).map(|_| {
                let mut buf = free.pop().unwrap();
                buf.fill(0.0);
                Arc::new(buf)
            }));
            blocks
        };
        let rem = cp.len % bs;
        if rem > 0 {
            let src = Arc::clone(&self.blocks[n_shared]);
            let dst = Arc::get_mut(&mut blocks[n_shared]).expect("fresh block is unique");
            for l in 0..self.pool.n_layers {
                let k0 = l * 2 * bs * dim;
                let v0 = k0 + bs * dim;
                dst[k0..k0 + rem * dim].copy_from_slice(&src[k0..k0 + rem * dim]);
                dst[v0..v0 + rem * dim].copy_from_slice(&src[v0..v0 + rem * dim]);
            }
        }
        Some(KvCache {
            pool: Arc::clone(&self.pool),
            blocks,
            lens: vec![cp.len; self.pool.n_layers],
            capacity,
            low_mark: 0,
            lease_id: next_lease_id(),
        })
    }

    /// Compact an accepted tree path in place: move the rows at flat
    /// positions `base + idx[j]` down to `base + j` (every layer), then
    /// truncate to `base + idx.len()`. `idx` must be strictly increasing
    /// with `idx[j] >= j` — the shape a flattened token tree always has,
    /// since a child follows its ancestors in flat order — which makes the
    /// left-to-right copy safe: no destination ever overwrites a source
    /// that is still needed. Rows already in place (`idx[j] == j`, e.g. the
    /// whole path at branching factor 1) are skipped untouched, so a
    /// degenerate tree commit is byte-for-byte a plain `truncate`.
    pub fn gather_tail(&mut self, base: usize, idx: &[usize]) {
        let (dim, bs) = (self.pool.dim, self.pool.block_size);
        let len = self.len();
        assert!(
            self.lens.iter().all(|&l| l == len),
            "gather requires layers in lockstep"
        );
        for (j, &i) in idx.iter().enumerate() {
            assert!(base + i < len, "gather source {i} out of range");
            assert!(i >= j, "gather cannot move rows forward");
            if j > 0 {
                assert!(i > idx[j - 1], "gather indices must be strictly increasing");
            }
            if i == j {
                continue;
            }
            let (src_pos, dst_pos) = (base + i, base + j);
            let (sb, db) = (src_pos / bs, dst_pos / bs);
            let (s_off, d_off) = ((src_pos % bs) * dim, (dst_pos % bs) * dim);
            self.ensure_unique(db);
            if sb == db {
                let buf = Arc::get_mut(&mut self.blocks[db]).expect("block just made unique");
                for l in 0..self.pool.n_layers {
                    let k0 = l * 2 * bs * dim;
                    let v0 = k0 + bs * dim;
                    buf.copy_within(k0 + s_off..k0 + s_off + dim, k0 + d_off);
                    buf.copy_within(v0 + s_off..v0 + s_off + dim, v0 + d_off);
                }
            } else {
                // i >= j puts the destination block strictly before the
                // source block, so the split borrow is always well-formed.
                let (lo, hi) = self.blocks.split_at_mut(sb);
                let src: &[f32] = &hi[0];
                let dst = Arc::get_mut(&mut lo[db]).expect("block just made unique");
                for l in 0..self.pool.n_layers {
                    let k0 = l * 2 * bs * dim;
                    let v0 = k0 + bs * dim;
                    dst[k0 + d_off..k0 + d_off + dim]
                        .copy_from_slice(&src[k0 + s_off..k0 + s_off + dim]);
                    dst[v0 + d_off..v0 + d_off + dim]
                        .copy_from_slice(&src[v0 + s_off..v0 + s_off + dim]);
                }
            }
        }
        self.truncate(base + idx.len());
    }

    /// Whether block `b` is currently shared with another lease (tests /
    /// diagnostics).
    pub fn block_is_shared(&self, b: usize) -> bool {
        Arc::strong_count(&self.blocks[b]) > 1
    }

    /// Raw storage of block `b` (tests / diagnostics: bit-identity checks).
    pub fn block_raw(&self, b: usize) -> &[f32] {
        &self.blocks[b]
    }
}

impl Drop for KvCache {
    fn drop(&mut self) {
        let mut free = self.pool.free.lock().unwrap();
        for block in self.blocks.drain(..) {
            // A block still shared with another lease flows back when its
            // last owner drops.
            if let Ok(buf) = Arc::try_unwrap(block) {
                free.push(buf);
            }
        }
    }
}

macro_rules! layer_read_api {
    () => {
        /// Cached positions in this layer.
        #[inline]
        pub fn len(&self) -> usize {
            self.cache.lens[self.l]
        }

        #[inline]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// See [`KvCache::capacity`].
        #[inline]
        pub fn capacity(&self) -> usize {
            self.cache.capacity
        }

        /// Key row at absolute position `pos`.
        #[inline]
        pub fn key(&self, pos: usize) -> &[f32] {
            let (dim, bs) = (self.cache.pool.dim, self.cache.pool.block_size);
            debug_assert!(pos < self.len(), "key position {pos} out of range");
            let off = self.l * 2 * bs * dim + (pos % bs) * dim;
            &self.cache.blocks[pos / bs][off..off + dim]
        }

        /// Value row at absolute position `pos`.
        #[inline]
        pub fn value(&self, pos: usize) -> &[f32] {
            let (dim, bs) = (self.cache.pool.dim, self.cache.pool.block_size);
            debug_assert!(pos < self.len(), "value position {pos} out of range");
            let off = self.l * 2 * bs * dim + bs * dim + (pos % bs) * dim;
            &self.cache.blocks[pos / bs][off..off + dim]
        }

        /// Iterate the first `ctx_len` positions as per-block contiguous
        /// `(start_pos, keys, values)` chunks — the shape the batched
        /// attention kernels consume. Each chunk covers
        /// `keys.len() / dim` positions starting at `start_pos`.
        pub fn chunks(&self, ctx_len: usize) -> KvChunks<'_> {
            debug_assert!(ctx_len <= self.len(), "chunk range beyond cached rows");
            KvChunks {
                cache: self.cache,
                l: self.l,
                ctx_len,
                b: 0,
            }
        }
    };
}

/// Read-only per-layer view of a [`KvCache`].
pub struct KvLayer<'a> {
    cache: &'a KvCache,
    l: usize,
}

impl KvLayer<'_> {
    layer_read_api!();
}

/// Mutable per-layer view of a [`KvCache`]: the append surface the
/// attention layers write through.
pub struct KvLayerMut<'a> {
    cache: &'a mut KvCache,
    l: usize,
}

impl KvLayerMut<'_> {
    layer_read_api!();

    /// Append one `(key, value)` row pair at the next position. Writes in
    /// place through `Arc::get_mut` (no lock, no allocation); a block
    /// shared copy-on-write is first copied out of the pool.
    pub fn append(&mut self, k_row: &[f32], v_row: &[f32]) {
        let (dim, bs) = (self.cache.pool.dim, self.cache.pool.block_size);
        assert_eq!(k_row.len(), dim, "key row width mismatch");
        assert_eq!(v_row.len(), dim, "value row width mismatch");
        let pos = self.cache.lens[self.l];
        assert!(
            pos < self.cache.capacity,
            "KV cache overflow: capacity = {}",
            self.cache.capacity
        );
        let b = pos / bs;
        self.cache.ensure_unique(b);
        let buf = Arc::get_mut(&mut self.cache.blocks[b]).expect("block just made unique");
        let k_off = self.l * 2 * bs * dim + (pos % bs) * dim;
        let v_off = k_off + bs * dim;
        buf[k_off..k_off + dim].copy_from_slice(k_row);
        buf[v_off..v_off + dim].copy_from_slice(v_row);
        self.cache.lens[self.l] = pos + 1;
    }
}

/// Iterator over per-block contiguous K/V chunks of one layer.
pub struct KvChunks<'a> {
    cache: &'a KvCache,
    l: usize,
    ctx_len: usize,
    b: usize,
}

impl<'a> Iterator for KvChunks<'a> {
    /// `(start_pos, keys, values)`; both slices are `filled * dim` long.
    type Item = (usize, &'a [f32], &'a [f32]);

    fn next(&mut self) -> Option<Self::Item> {
        let (dim, bs) = (self.cache.pool.dim, self.cache.pool.block_size);
        let start = self.b * bs;
        if start >= self.ctx_len {
            return None;
        }
        let filled = (self.ctx_len - start).min(bs);
        let buf: &'a [f32] = &self.cache.blocks[self.b];
        let k0 = self.l * 2 * bs * dim;
        let v0 = k0 + bs * dim;
        self.b += 1;
        Some((
            start,
            &buf[k0..k0 + filled * dim],
            &buf[v0..v0 + filled * dim],
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill_rows(cache: &mut KvCache, n: usize, tag: f32) {
        let dim = cache.dim();
        let layers = cache.n_layers();
        for l in 0..layers {
            let mut layer = cache.layer_mut(l);
            let from = layer.len();
            for p in from..from + n {
                let k = vec![tag + p as f32; dim];
                let v = vec![-(tag + p as f32); dim];
                layer.append(&k, &v);
            }
        }
    }

    #[test]
    fn append_then_read_back() {
        let mut cache = KvCache::new(2, 8, 3);
        fill_rows(&mut cache, 5, 10.0);
        assert_eq!(cache.len(), 5);
        for l in 0..2 {
            let layer = cache.layer(l);
            for p in 0..5 {
                assert_eq!(layer.key(p), &[10.0 + p as f32; 3][..]);
                assert_eq!(layer.value(p), &[-(10.0 + p as f32); 3][..]);
            }
        }
    }

    #[test]
    fn chunks_cover_exactly_the_context() {
        let pool = KvPool::new(1, 2, 4, 4); // block_size 4: genuinely paged
        let mut cache = pool.try_lease(10).unwrap();
        fill_rows(&mut cache, 10, 0.0);
        for ctx in [0, 1, 4, 5, 9, 10] {
            let layer = cache.layer(0);
            let mut seen = 0;
            for (start, keys, values) in layer.chunks(ctx) {
                assert_eq!(start, seen);
                assert_eq!(keys.len(), values.len());
                let filled = keys.len() / 2;
                for r in 0..filled {
                    assert_eq!(keys[r * 2], (start + r) as f32, "ctx {ctx}");
                }
                seen += filled;
            }
            assert_eq!(seen, ctx, "chunks must cover ctx exactly");
        }
    }

    #[test]
    fn blocks_never_reallocate() {
        let mut cache = KvCache::new(1, 16, 2);
        let p0 = cache.block_raw(0).as_ptr();
        fill_rows(&mut cache, 16, 1.0);
        cache.truncate(3);
        fill_rows(&mut cache, 4, 2.0);
        cache.reset();
        fill_rows(&mut cache, 8, 3.0);
        assert_eq!(
            cache.block_raw(0).as_ptr(),
            p0,
            "unique block storage must be stable across append/truncate/reset"
        );
    }

    #[test]
    fn truncate_rolls_back_then_overwrites() {
        let mut cache = KvCache::new(1, 8, 2);
        fill_rows(&mut cache, 4, 0.0);
        cache.truncate(2);
        assert_eq!(cache.len(), 2);
        fill_rows(&mut cache, 1, 100.0);
        assert_eq!(cache.layer(0).key(2), &[102.0, 102.0]);
        assert_eq!(cache.layer(0).value(2), &[-102.0, -102.0]);
    }

    #[test]
    #[should_panic(expected = "KV cache overflow")]
    fn overflow_panics() {
        let mut cache = KvCache::new(1, 2, 2);
        fill_rows(&mut cache, 3, 0.0);
    }

    #[test]
    #[should_panic(expected = "truncate cannot grow")]
    fn truncate_cannot_grow() {
        let mut cache = KvCache::new(1, 4, 2);
        fill_rows(&mut cache, 1, 0.0);
        cache.truncate(2);
    }

    #[test]
    fn reset_is_bit_identical_to_fresh() {
        let mut cache = KvCache::new(2, 6, 3);
        fill_rows(&mut cache, 6, 7.0);
        cache.reset();
        let fresh = KvCache::new(2, 6, 3);
        assert_eq!(cache.len(), 0);
        for b in 0..cache.n_blocks() {
            let a: Vec<u32> = cache.block_raw(b).iter().map(|v| v.to_bits()).collect();
            let f: Vec<u32> = fresh.block_raw(b).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, f, "reset storage must be bit-identical to fresh");
        }
    }

    /// The paged extension of reset-equivalence: a pool block that served a
    /// previous lease and flowed back must come out bit-identical to a
    /// never-used one.
    #[test]
    fn reused_pool_lease_is_bit_identical_to_fresh() {
        let pool = KvPool::new(2, 3, 4, 3);
        let mut first = pool.try_lease(12).unwrap();
        fill_rows(&mut first, 11, 42.0);
        drop(first); // blocks flow back dirty
        assert_eq!(pool.free_blocks(), 3);
        let reused = pool.try_lease(12).unwrap();
        let fresh_pool = KvPool::new(2, 3, 4, 3);
        let fresh = fresh_pool.try_lease(12).unwrap();
        assert_eq!(reused.len(), fresh.len());
        for b in 0..reused.n_blocks() {
            let a: Vec<u32> = reused.block_raw(b).iter().map(|v| v.to_bits()).collect();
            let f: Vec<u32> = fresh.block_raw(b).iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, f, "reused block {b} differs from a fresh pool's");
        }
    }

    #[test]
    fn cache_reset_covers_all_layers() {
        let mut cache = KvCache::new(3, 4, 2);
        fill_rows(&mut cache, 2, 1.0);
        cache.reset();
        for l in 0..3 {
            assert_eq!(cache.layer(l).len(), 0);
        }
        fill_rows(&mut cache, 1, 9.0);
        assert_eq!(cache.layer(2).key(0), &[9.0, 9.0]);
    }

    #[test]
    fn multi_layer_lockstep() {
        let mut cache = KvCache::new(2, 8, 2);
        // Layers advance independently within a "forward pass"...
        cache.layer_mut(0).append(&[1.0, 1.0], &[2.0, 2.0]);
        assert_eq!(cache.layer(0).len(), 1);
        assert_eq!(cache.layer(1).len(), 0);
        cache.layer_mut(1).append(&[3.0, 3.0], &[4.0, 4.0]);
        // ...and agree again between passes.
        assert_eq!(cache.len(), 1);
        cache.truncate(0);
        assert_eq!(cache.layer(0).len(), 0);
        assert_eq!(cache.layer(1).len(), 0);
    }

    #[test]
    fn checkpoint_restore_roundtrip() {
        let mut cache = KvCache::new(1, 8, 2);
        fill_rows(&mut cache, 3, 0.0);
        let cp = cache.checkpoint();
        fill_rows(&mut cache, 4, 50.0);
        assert_eq!(cache.len(), 7);
        cache.restore(&cp);
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.layer(0).key(2), &[2.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "truncated below the checkpoint")]
    fn restore_after_deeper_truncate_panics() {
        let mut cache = KvCache::new(1, 8, 2);
        fill_rows(&mut cache, 4, 0.0);
        let cp = cache.checkpoint();
        cache.truncate(1); // below the checkpoint: rows 1..4 are fair game
        fill_rows(&mut cache, 3, 9.0);
        cache.restore(&cp);
    }

    /// The low-watermark contract at the state frontier: a checkpoint does
    /// not survive `reset` — the rows it names were rezeroed.
    #[test]
    #[should_panic(expected = "ahead of the cache")]
    fn restore_after_reset_is_rejected() {
        let mut cache = KvCache::new(1, 8, 2);
        fill_rows(&mut cache, 3, 0.0);
        let cp = cache.checkpoint();
        cache.reset();
        cache.restore(&cp);
    }

    #[test]
    fn pool_admission_and_return() {
        let pool = KvPool::new(1, 2, 4, 4);
        assert_eq!(pool.free_blocks(), 4);
        let a = pool.try_lease(8).unwrap(); // 2 blocks
        let b = pool.try_lease(5).unwrap(); // 2 blocks
        assert_eq!(pool.free_blocks(), 0);
        assert!(pool.try_lease(1).is_none(), "pool exhausted");
        drop(a);
        assert_eq!(pool.free_blocks(), 2);
        let c = pool.try_lease(8).unwrap();
        drop(b);
        drop(c);
        assert_eq!(pool.free_blocks(), 4);
    }

    /// The PR 7 memory claim, pinned as arithmetic the pool actually
    /// executes: at the arena size PR 5 spent on 4 fixed full-`max_seq`
    /// slots, the paged pool concurrently serves ≥ 4× as many
    /// typical-sized sessions.
    #[test]
    fn paged_pool_serves_4x_the_fixed_slot_count_at_equal_arena() {
        let (n_layers, dim, max_seq, pr5_slots) = (2, 32, 128, 4);
        let block_size = 16;
        let pool = KvPool::new(n_layers, dim, block_size, pr5_slots * max_seq / block_size);
        // Equal memory: the arena holds exactly what PR 5's 4 slots held.
        assert_eq!(pool.arena_f32s(), pr5_slots * n_layers * 2 * max_seq * dim);
        // A typical request: short prompt + bounded budget ⇒ 32 positions.
        let mut sessions = Vec::new();
        while let Some(cache) = pool.try_lease(32) {
            sessions.push(cache);
        }
        assert!(
            sessions.len() >= 4 * pr5_slots,
            "only {} concurrent sessions at PR 5's arena size",
            sessions.len()
        );
        // Every one is writable end to end.
        for (i, cache) in sessions.iter_mut().enumerate() {
            fill_rows(cache, 32, i as f32);
        }
        drop(sessions);
        assert_eq!(pool.free_blocks(), pool.total_blocks());
    }

    #[test]
    fn prefix_lease_shares_full_blocks_and_copies_the_tail() {
        let pool = KvPool::new(2, 3, 4, 8);
        let mut prefix = pool.try_lease(8).unwrap();
        fill_rows(&mut prefix, 6, 100.0); // block 0 full, block 1 half
        let free_before = pool.free_blocks();
        let session = pool.try_lease_with_prefix(&prefix, 14).unwrap();
        // 14 positions = 4 blocks; 1 shared with the prefix, 3 from the pool.
        assert_eq!(free_before - pool.free_blocks(), 3);
        assert!(session.block_is_shared(0), "full prefix block is shared");
        assert!(!session.block_is_shared(1), "partial tail must be copied");
        assert_eq!(session.len(), 6);
        for l in 0..2 {
            for p in 0..6 {
                assert_eq!(session.layer(l).key(p), prefix.layer(l).key(p));
                assert_eq!(session.layer(l).value(p), prefix.layer(l).value(p));
            }
        }
    }

    /// Copy-on-write: a session that rolls back into a shared block and
    /// overwrites it must not disturb the prefix it was leased from.
    #[test]
    fn writing_into_a_shared_block_copies_instead_of_corrupting() {
        let pool = KvPool::new(1, 2, 4, 8);
        let mut prefix = pool.try_lease(4).unwrap();
        fill_rows(&mut prefix, 4, 0.0);
        let golden: Vec<u32> = prefix.block_raw(0).iter().map(|v| v.to_bits()).collect();
        let mut session = pool.try_lease_with_prefix(&prefix, 8).unwrap();
        session.truncate(2);
        fill_rows(&mut session, 2, 777.0);
        assert!(!session.block_is_shared(0), "write must have copied");
        assert_eq!(session.layer(0).key(2), &[779.0, 779.0]);
        let after: Vec<u32> = prefix.block_raw(0).iter().map(|v| v.to_bits()).collect();
        assert_eq!(golden, after, "prefix corrupted by a CoW writer");
        assert_eq!(prefix.layer(0).key(2), &[2.0, 2.0]);
    }

    /// A checkpoint taken while a lease still shares CoW blocks with its
    /// prefix must survive the copy-on-write that a later append triggers:
    /// `ensure_unique` swaps the physical storage but the lease identity —
    /// and with it the checkpoint — is unchanged.
    #[test]
    fn checkpoint_survives_copy_on_write() {
        let pool = KvPool::new(1, 2, 4, 8);
        let mut prefix = pool.try_lease(4).unwrap();
        fill_rows(&mut prefix, 4, 0.0);
        let mut session = pool.try_lease_with_prefix(&prefix, 8).unwrap();
        assert!(session.block_is_shared(0));
        let cp = session.checkpoint(); // len 4, while block 0 is still shared
        session.truncate(2);
        // This is below the checkpoint, which invalidates it — take a fresh
        // one at the rollback frontier, as the draft pipeline does.
        let cp2 = session.checkpoint();
        fill_rows(&mut session, 3, 50.0); // CoW: block 0 copied out of the share
        assert!(!session.block_is_shared(0));
        assert_eq!(cp.lease_id(), session.lease_id());
        session.restore(&cp2);
        assert_eq!(session.len(), 2);
        assert_eq!(session.layer(0).key(1), &[1.0, 1.0]);
        // The prefix never noticed any of it.
        assert_eq!(prefix.layer(0).key(3), &[3.0, 3.0]);
    }

    /// Checkpoints are lease-scoped: replaying one against a different
    /// lease — even a CoW sibling sharing the same physical blocks — is a
    /// panic, not a silent rollback of unrelated rows.
    #[test]
    #[should_panic(expected = "different lease")]
    fn checkpoint_from_another_lease_is_rejected() {
        let pool = KvPool::new(1, 2, 4, 8);
        let mut a = pool.try_lease(4).unwrap();
        fill_rows(&mut a, 3, 0.0);
        let cp = a.checkpoint();
        let mut b = pool.try_lease_with_prefix(&a, 8).unwrap();
        assert_ne!(a.lease_id(), b.lease_id());
        b.restore(&cp);
    }

    /// Dropping a lease and re-leasing the same blocks yields a NEW lease
    /// id, so a stale checkpoint cannot roll back the recycled storage.
    #[test]
    #[should_panic(expected = "different lease")]
    fn stale_checkpoint_cannot_touch_a_recycled_lease() {
        let pool = KvPool::new(1, 2, 4, 1);
        let mut first = pool.try_lease(4).unwrap();
        fill_rows(&mut first, 2, 0.0);
        let cp = first.checkpoint();
        drop(first);
        let mut second = pool.try_lease(4).unwrap();
        fill_rows(&mut second, 3, 9.0);
        second.restore(&cp);
    }

    /// A fork shares the checkpoint's fully-filled blocks zero-copy, copies
    /// the partial tail, and gets a fresh lease identity.
    #[test]
    fn fork_from_checkpoint_shares_blocks_and_gets_new_identity() {
        let pool = KvPool::new(2, 3, 4, 8);
        let mut parent = pool.try_lease(8).unwrap();
        fill_rows(&mut parent, 6, 100.0); // block 0 full, block 1 half
        let cp = parent.checkpoint();
        fill_rows(&mut parent, 1, 900.0); // parent runs ahead of the fork
        let free_before = pool.free_blocks();
        let branch = parent.try_fork_from_checkpoint(&cp, 12).unwrap();
        // 12 positions = 3 blocks; 1 shared, 2 drawn from the pool.
        assert_eq!(free_before - pool.free_blocks(), 2);
        assert!(branch.block_is_shared(0), "full block is shared");
        assert!(!branch.block_is_shared(1), "partial tail must be copied");
        assert_eq!(branch.len(), 6, "fork starts at the checkpoint");
        assert_ne!(branch.lease_id(), parent.lease_id());
        for l in 0..2 {
            for p in 0..6 {
                assert_eq!(branch.layer(l).key(p), parent.layer(l).key(p));
                assert_eq!(branch.layer(l).value(p), parent.layer(l).value(p));
            }
        }
    }

    /// Sibling isolation, asserted bitwise: two branches forked from the
    /// same checkpoint diverge, roll back, and overwrite — and neither the
    /// parent nor the sibling ever sees a foreign row.
    #[test]
    fn forked_siblings_are_bitwise_isolated() {
        let pool = KvPool::new(1, 2, 4, 12);
        let mut parent = pool.try_lease(8).unwrap();
        fill_rows(&mut parent, 4, 0.0); // exactly one full shared block
        let cp = parent.checkpoint();
        let mut a = parent.try_fork_from_checkpoint(&cp, 8).unwrap();
        let mut b = parent.try_fork_from_checkpoint(&cp, 8).unwrap();
        let golden: Vec<u32> = parent.block_raw(0).iter().map(|v| v.to_bits()).collect();

        fill_rows(&mut a, 3, 500.0);
        fill_rows(&mut b, 2, 700.0);
        let b_bits: Vec<Vec<u32>> = (0..b.n_blocks())
            .map(|blk| b.block_raw(blk).iter().map(|v| v.to_bits()).collect())
            .collect();
        // Branch A rolls back INTO the shared block and overwrites it.
        let cp_a = a.checkpoint();
        a.truncate(2);
        fill_rows(&mut a, 4, 999.0);
        assert!(!a.block_is_shared(0), "rollback write must have copied");
        // Restoring/rolling branch A perturbed neither sibling nor parent.
        for (blk, bits) in b_bits.iter().enumerate() {
            let now: Vec<u32> = b.block_raw(blk).iter().map(|v| v.to_bits()).collect();
            assert_eq!(bits, &now, "sibling block {blk} perturbed");
        }
        let parent_now: Vec<u32> = parent.block_raw(0).iter().map(|v| v.to_bits()).collect();
        assert_eq!(golden, parent_now, "parent perturbed by branch writes");
        // A's own checkpoint machinery still works after the CoW.
        assert_eq!(cp_a.lease_id(), a.lease_id());
        assert_eq!(b.layer(0).key(5), &[705.0, 705.0]);
        drop(a);
        drop(b);
        drop(parent);
        assert_eq!(pool.free_blocks(), pool.total_blocks(), "no block leaks");
    }

    /// Forking never steals from live leases: at pool exhaustion the fork
    /// is refused, and a fork needing only shared blocks still succeeds.
    #[test]
    fn fork_respects_pool_exhaustion() {
        let pool = KvPool::new(1, 2, 4, 2);
        let mut parent = pool.try_lease(8).unwrap(); // both blocks leased
        fill_rows(&mut parent, 8, 0.0);
        let cp = parent.checkpoint();
        assert_eq!(pool.free_blocks(), 0);
        assert!(
            parent.try_fork_from_checkpoint(&cp, 12).is_none(),
            "fork must not conjure blocks from an exhausted pool"
        );
        // A fork covered entirely by shared full blocks draws nothing.
        let branch = parent.try_fork_from_checkpoint(&cp, 8).unwrap();
        assert_eq!(branch.len(), 8);
        assert!(branch.block_is_shared(0) && branch.block_is_shared(1));
    }

    /// A checkpoint invalidated by a deeper truncate cannot seed a fork —
    /// the rows it names may already be overwritten.
    #[test]
    #[should_panic(expected = "truncated below the checkpoint")]
    fn fork_below_low_mark_is_rejected() {
        let pool = KvPool::new(1, 2, 4, 4);
        let mut parent = pool.try_lease(8).unwrap();
        fill_rows(&mut parent, 5, 0.0);
        let cp = parent.checkpoint();
        parent.truncate(2);
        fill_rows(&mut parent, 4, 9.0); // rows 2..6 rewritten under the cp
        parent.try_fork_from_checkpoint(&cp, 8);
    }

    /// `gather_tail` compacts an accepted path: rows move down within and
    /// across blocks, identity indices are no-ops, and the tail truncates.
    #[test]
    fn gather_tail_compacts_within_and_across_blocks() {
        let pool = KvPool::new(2, 3, 4, 4); // block_size 4: spans blocks
        let mut cache = pool.try_lease(12).unwrap();
        fill_rows(&mut cache, 3, 0.0); // committed prefix: rows 0..3
        fill_rows(&mut cache, 8, 50.0); // tree rows 3..11 (tags 53..61)
        let keep = [0usize, 2, 5, 7]; // flat path: rows 3, 5, 8, 10
        let want: Vec<Vec<f32>> = keep
            .iter()
            .map(|&i| cache.layer(1).key(3 + i).to_vec())
            .collect();
        cache.gather_tail(3, &keep);
        assert_eq!(cache.len(), 3 + keep.len());
        for l in 0..2 {
            assert_eq!(cache.layer(l).key(1), &[1.0; 3][..], "prefix intact");
            for (j, w) in want.iter().enumerate() {
                assert_eq!(cache.layer(l).key(3 + j), &w[..], "layer {l} row {j}");
                assert_eq!(cache.layer(l).value(3 + j)[0], -w[0]);
            }
        }
    }

    /// At branching factor 1 the path is `0..=k`, every row is already in
    /// place, and the gather must be bit-identical to a plain truncate.
    #[test]
    fn gather_tail_identity_is_a_plain_truncate() {
        let mut cache = KvCache::new(1, 16, 2);
        fill_rows(&mut cache, 9, 10.0);
        let before: Vec<u32> = cache.block_raw(0).iter().map(|v| v.to_bits()).collect();
        cache.gather_tail(4, &[0, 1, 2]);
        assert_eq!(cache.len(), 7);
        let after: Vec<u32> = cache.block_raw(0).iter().map(|v| v.to_bits()).collect();
        assert_eq!(before, after, "identity gather must not touch storage");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn gather_tail_rejects_unordered_indices() {
        let mut cache = KvCache::new(1, 8, 2);
        fill_rows(&mut cache, 6, 0.0);
        cache.gather_tail(1, &[0, 3, 2]);
    }

    /// `reset` on a lease holding shared blocks detaches them (they stay
    /// valid for the other owner) and leaves this lease bit-fresh.
    #[test]
    fn reset_detaches_shared_blocks() {
        let pool = KvPool::new(1, 2, 4, 8);
        let mut prefix = pool.try_lease(4).unwrap();
        fill_rows(&mut prefix, 4, 5.0);
        let mut session = pool.try_lease_with_prefix(&prefix, 8).unwrap();
        session.reset();
        assert!(!session.block_is_shared(0));
        assert!(session.block_raw(0).iter().all(|&v| v == 0.0));
        assert_eq!(prefix.layer(0).key(0), &[5.0, 5.0], "prefix untouched");
    }
}
