//! `aasd` — facade crate for the AASD reproduction.
//!
//! Re-exports the workspace subcrates so the repo-root `tests/` and
//! `examples/` can depend on a single crate. The compute core built in PR 1:
//!
//! * [`tensor`] — dense f32 kernels (naive/blocked/parallel matmul, softmax,
//!   deterministic RNG);
//! * [`nn`] — transformer building blocks: RoPE, pre-allocated KV cache,
//!   multi-head causal attention, SwiGLU decoder blocks, greedy sampling;
//! * [`specdec`] — speculative decoding: batched γ-token verify, the greedy
//!   draft-then-verify loop, autoregressive reference, α/τ metrics.
//!
//! Later PRs add the remaining DESIGN.md crates (autograd, mllm, data,
//! train, core, baselines) and re-export them here.

pub use aasd_nn as nn;
pub use aasd_specdec as specdec;
pub use aasd_tensor as tensor;

/// Workspace version (all crates share it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
