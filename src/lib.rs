//! `aasd` — facade crate for the AASD reproduction.
//!
//! Re-exports the workspace subcrates so the repo-root `tests/` and
//! `examples/` can depend on a single crate:
//!
//! * [`tensor`] — dense f32 kernels (naive/blocked/parallel matmul, softmax,
//!   deterministic RNG);
//! * [`nn`] — transformer building blocks: RoPE, pre-allocated KV cache,
//!   multi-head causal attention, SwiGLU decoder blocks, greedy sampling,
//!   and the tape-replayed `forward_train` path;
//! * [`autograd`] — tape-based reverse-mode AD over `tensor`, with
//!   finite-difference gradient checks for every op;
//! * [`specdec`] — speculative decoding: batched γ-token verify, the greedy
//!   draft-then-verify loop, autoregressive reference, α/τ metrics;
//! * [`train`] — optimizers, LR schedules, CE/KL losses, and the
//!   self-data distillation loop that aligns a draft to its target;
//! * [`mm`] — the multimodal core: LlavaSim (ViT + connector + LM), the
//!   learned KV projector, hybrid-cache speculative decoding with ablation
//!   switches, and joint draft+projector distillation;
//! * [`serve`] — the multi-session serving layer: continuous batching at
//!   speculative-block granularity, admission control, lock-free metrics,
//!   and a length-prefixed TCP front end;
//! * [`data`] — procedural multimodal workloads (WildSim / CocoCapSim /
//!   SqaSim): shape scenes rendered to image patches plus a closed-vocab
//!   grammar, seeded deterministic (image, prompt, reference) streams;
//! * [`baselines`] — the Table-1 draft zoo (FT/DT-LLaMA, FT/DT-LLaVA vs the
//!   full AASD draft) and the shared lossless speculative eval harness.

pub use aasd_autograd as autograd;
pub use aasd_baselines as baselines;
pub use aasd_data as data;
pub use aasd_mm as mm;
pub use aasd_nn as nn;
pub use aasd_serve as serve;
pub use aasd_specdec as specdec;
pub use aasd_tensor as tensor;
pub use aasd_train as train;

/// Workspace version (all crates share it).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
